/root/repo/target/debug/deps/fig7-6884428e31ee3bbb.d: crates/bench/benches/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-6884428e31ee3bbb.rmeta: crates/bench/benches/fig7.rs Cargo.toml

crates/bench/benches/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
