/root/repo/target/debug/deps/hllc_sim-5a43b1a43fbd6d60.d: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/address.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/data.rs crates/sim/src/dram.rs crates/sim/src/energy.rs crates/sim/src/hierarchy.rs crates/sim/src/llc.rs crates/sim/src/stats.rs crates/sim/src/timing.rs

/root/repo/target/debug/deps/hllc_sim-5a43b1a43fbd6d60: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/address.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/data.rs crates/sim/src/dram.rs crates/sim/src/energy.rs crates/sim/src/hierarchy.rs crates/sim/src/llc.rs crates/sim/src/stats.rs crates/sim/src/timing.rs

crates/sim/src/lib.rs:
crates/sim/src/access.rs:
crates/sim/src/address.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/data.rs:
crates/sim/src/dram.rs:
crates/sim/src/energy.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/llc.rs:
crates/sim/src/stats.rs:
crates/sim/src/timing.rs:
