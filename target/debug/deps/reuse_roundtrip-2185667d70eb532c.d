/root/repo/target/debug/deps/reuse_roundtrip-2185667d70eb532c.d: tests/reuse_roundtrip.rs

/root/repo/target/debug/deps/reuse_roundtrip-2185667d70eb532c: tests/reuse_roundtrip.rs

tests/reuse_roundtrip.rs:
