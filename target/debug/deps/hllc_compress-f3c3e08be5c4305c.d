/root/repo/target/debug/deps/hllc_compress-f3c3e08be5c4305c.d: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs

/root/repo/target/debug/deps/libhllc_compress-f3c3e08be5c4305c.rlib: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs

/root/repo/target/debug/deps/libhllc_compress-f3c3e08be5c4305c.rmeta: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs

crates/compress/src/lib.rs:
crates/compress/src/analysis.rs:
crates/compress/src/bdi.rs:
crates/compress/src/block.rs:
crates/compress/src/encoding.rs:
crates/compress/src/fpc.rs:
