/root/repo/target/debug/deps/forecast_pipeline-fcde31cc22099d9f.d: tests/forecast_pipeline.rs

/root/repo/target/debug/deps/forecast_pipeline-fcde31cc22099d9f: tests/forecast_pipeline.rs

tests/forecast_pipeline.rs:
