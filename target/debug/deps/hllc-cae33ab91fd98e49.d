/root/repo/target/debug/deps/hllc-cae33ab91fd98e49.d: src/bin/hllc.rs Cargo.toml

/root/repo/target/debug/deps/libhllc-cae33ab91fd98e49.rmeta: src/bin/hllc.rs Cargo.toml

src/bin/hllc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
