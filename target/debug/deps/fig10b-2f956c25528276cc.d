/root/repo/target/debug/deps/fig10b-2f956c25528276cc.d: crates/bench/benches/fig10b.rs Cargo.toml

/root/repo/target/debug/deps/libfig10b-2f956c25528276cc.rmeta: crates/bench/benches/fig10b.rs Cargo.toml

crates/bench/benches/fig10b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
