/root/repo/target/debug/deps/serde_json-b9b0d8d23634ca9f.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b9b0d8d23634ca9f.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b9b0d8d23634ca9f.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
