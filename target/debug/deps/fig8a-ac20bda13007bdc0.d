/root/repo/target/debug/deps/fig8a-ac20bda13007bdc0.d: crates/bench/benches/fig8a.rs Cargo.toml

/root/repo/target/debug/deps/libfig8a-ac20bda13007bdc0.rmeta: crates/bench/benches/fig8a.rs Cargo.toml

crates/bench/benches/fig8a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
