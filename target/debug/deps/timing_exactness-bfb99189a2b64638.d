/root/repo/target/debug/deps/timing_exactness-bfb99189a2b64638.d: crates/sim/tests/timing_exactness.rs Cargo.toml

/root/repo/target/debug/deps/libtiming_exactness-bfb99189a2b64638.rmeta: crates/sim/tests/timing_exactness.rs Cargo.toml

crates/sim/tests/timing_exactness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
