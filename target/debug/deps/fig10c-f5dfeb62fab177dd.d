/root/repo/target/debug/deps/fig10c-f5dfeb62fab177dd.d: crates/bench/benches/fig10c.rs Cargo.toml

/root/repo/target/debug/deps/libfig10c-f5dfeb62fab177dd.rmeta: crates/bench/benches/fig10c.rs Cargo.toml

crates/bench/benches/fig10c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
