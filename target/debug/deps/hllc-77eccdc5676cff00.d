/root/repo/target/debug/deps/hllc-77eccdc5676cff00.d: src/bin/hllc.rs

/root/repo/target/debug/deps/hllc-77eccdc5676cff00: src/bin/hllc.rs

src/bin/hllc.rs:
