/root/repo/target/debug/deps/hybrid_llc-e3632d20396fdfbc.d: src/lib.rs src/cli.rs src/session.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_llc-e3632d20396fdfbc.rmeta: src/lib.rs src/cli.rs src/session.rs Cargo.toml

src/lib.rs:
src/cli.rs:
src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
