/root/repo/target/debug/deps/timing_exactness-d110627c6db3ac40.d: crates/sim/tests/timing_exactness.rs

/root/repo/target/debug/deps/timing_exactness-d110627c6db3ac40: crates/sim/tests/timing_exactness.rs

crates/sim/tests/timing_exactness.rs:
