/root/repo/target/debug/deps/hybrid_llc-30e90289c05b394e.d: src/lib.rs

/root/repo/target/debug/deps/hybrid_llc-30e90289c05b394e: src/lib.rs

src/lib.rs:
