/root/repo/target/debug/deps/hllc_bench-10adc44d6a6692e7.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_bench-10adc44d6a6692e7.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
