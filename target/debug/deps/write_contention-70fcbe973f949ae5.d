/root/repo/target/debug/deps/write_contention-70fcbe973f949ae5.d: crates/core/tests/write_contention.rs

/root/repo/target/debug/deps/write_contention-70fcbe973f949ae5: crates/core/tests/write_contention.rs

crates/core/tests/write_contention.rs:
