/root/repo/target/debug/deps/trace_seed_properties-e2c9189a1e28c1d0.d: tests/trace_seed_properties.rs

/root/repo/target/debug/deps/trace_seed_properties-e2c9189a1e28c1d0: tests/trace_seed_properties.rs

tests/trace_seed_properties.rs:
