/root/repo/target/debug/deps/hllc_nvm-84ecfd55dc1d7fc9.d: crates/nvm/src/lib.rs crates/nvm/src/array.rs crates/nvm/src/endurance.rs crates/nvm/src/fault_map.rs crates/nvm/src/frame.rs crates/nvm/src/rearrange.rs crates/nvm/src/setlevel.rs crates/nvm/src/wear.rs

/root/repo/target/debug/deps/libhllc_nvm-84ecfd55dc1d7fc9.rlib: crates/nvm/src/lib.rs crates/nvm/src/array.rs crates/nvm/src/endurance.rs crates/nvm/src/fault_map.rs crates/nvm/src/frame.rs crates/nvm/src/rearrange.rs crates/nvm/src/setlevel.rs crates/nvm/src/wear.rs

/root/repo/target/debug/deps/libhllc_nvm-84ecfd55dc1d7fc9.rmeta: crates/nvm/src/lib.rs crates/nvm/src/array.rs crates/nvm/src/endurance.rs crates/nvm/src/fault_map.rs crates/nvm/src/frame.rs crates/nvm/src/rearrange.rs crates/nvm/src/setlevel.rs crates/nvm/src/wear.rs

crates/nvm/src/lib.rs:
crates/nvm/src/array.rs:
crates/nvm/src/endurance.rs:
crates/nvm/src/fault_map.rs:
crates/nvm/src/frame.rs:
crates/nvm/src/rearrange.rs:
crates/nvm/src/setlevel.rs:
crates/nvm/src/wear.rs:
