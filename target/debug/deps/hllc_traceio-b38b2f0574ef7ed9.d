/root/repo/target/debug/deps/hllc_traceio-b38b2f0574ef7ed9.d: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs

/root/repo/target/debug/deps/libhllc_traceio-b38b2f0574ef7ed9.rlib: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs

/root/repo/target/debug/deps/libhllc_traceio-b38b2f0574ef7ed9.rmeta: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs

crates/traceio/src/lib.rs:
crates/traceio/src/crc32.rs:
crates/traceio/src/format.rs:
crates/traceio/src/reader.rs:
crates/traceio/src/record.rs:
crates/traceio/src/replay.rs:
crates/traceio/src/varint.rs:
crates/traceio/src/writer.rs:
