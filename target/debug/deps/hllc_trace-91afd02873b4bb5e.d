/root/repo/target/debug/deps/hllc_trace-91afd02873b4bb5e.d: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_trace-91afd02873b4bb5e.rmeta: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/app.rs:
crates/trace/src/data.rs:
crates/trace/src/driver.rs:
crates/trace/src/mix.rs:
crates/trace/src/pattern.rs:
crates/trace/src/profile.rs:
crates/trace/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
