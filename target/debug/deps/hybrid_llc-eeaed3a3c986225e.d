/root/repo/target/debug/deps/hybrid_llc-eeaed3a3c986225e.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_llc-eeaed3a3c986225e.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
