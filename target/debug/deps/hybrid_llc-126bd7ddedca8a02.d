/root/repo/target/debug/deps/hybrid_llc-126bd7ddedca8a02.d: src/lib.rs

/root/repo/target/debug/deps/libhybrid_llc-126bd7ddedca8a02.rlib: src/lib.rs

/root/repo/target/debug/deps/libhybrid_llc-126bd7ddedca8a02.rmeta: src/lib.rs

src/lib.rs:
