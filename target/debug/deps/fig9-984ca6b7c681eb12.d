/root/repo/target/debug/deps/fig9-984ca6b7c681eb12.d: crates/bench/benches/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-984ca6b7c681eb12.rmeta: crates/bench/benches/fig9.rs Cargo.toml

crates/bench/benches/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
