/root/repo/target/debug/deps/hllc_traceio-d016a7b33e8785ca.d: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs

/root/repo/target/debug/deps/hllc_traceio-d016a7b33e8785ca: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs

crates/traceio/src/lib.rs:
crates/traceio/src/crc32.rs:
crates/traceio/src/format.rs:
crates/traceio/src/reader.rs:
crates/traceio/src/record.rs:
crates/traceio/src/replay.rs:
crates/traceio/src/varint.rs:
crates/traceio/src/writer.rs:
