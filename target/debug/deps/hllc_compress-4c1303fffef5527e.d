/root/repo/target/debug/deps/hllc_compress-4c1303fffef5527e.d: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_compress-4c1303fffef5527e.rmeta: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs Cargo.toml

crates/compress/src/lib.rs:
crates/compress/src/analysis.rs:
crates/compress/src/bdi.rs:
crates/compress/src/block.rs:
crates/compress/src/encoding.rs:
crates/compress/src/fpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
