/root/repo/target/debug/deps/table5-b21d4dfcecac600a.d: crates/bench/benches/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-b21d4dfcecac600a.rmeta: crates/bench/benches/table5.rs Cargo.toml

crates/bench/benches/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
