/root/repo/target/debug/deps/hllc_runner-79fc5b08b68e7342.d: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/debug/deps/libhllc_runner-79fc5b08b68e7342.rlib: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/debug/deps/libhllc_runner-79fc5b08b68e7342.rmeta: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

crates/runner/src/lib.rs:
crates/runner/src/pool.rs:
crates/runner/src/seed.rs:
crates/runner/src/sweep.rs:
