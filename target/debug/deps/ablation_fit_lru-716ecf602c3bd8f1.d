/root/repo/target/debug/deps/ablation_fit_lru-716ecf602c3bd8f1.d: crates/bench/benches/ablation_fit_lru.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fit_lru-716ecf602c3bd8f1.rmeta: crates/bench/benches/ablation_fit_lru.rs Cargo.toml

crates/bench/benches/ablation_fit_lru.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
