/root/repo/target/debug/deps/hllc_bench-144f61361fdaf894.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/debug/deps/hllc_bench-144f61361fdaf894: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
