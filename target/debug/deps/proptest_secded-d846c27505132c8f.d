/root/repo/target/debug/deps/proptest_secded-d846c27505132c8f.d: crates/ecc/tests/proptest_secded.rs

/root/repo/target/debug/deps/proptest_secded-d846c27505132c8f: crates/ecc/tests/proptest_secded.rs

crates/ecc/tests/proptest_secded.rs:
