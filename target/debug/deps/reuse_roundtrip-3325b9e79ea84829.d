/root/repo/target/debug/deps/reuse_roundtrip-3325b9e79ea84829.d: tests/reuse_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libreuse_roundtrip-3325b9e79ea84829.rmeta: tests/reuse_roundtrip.rs Cargo.toml

tests/reuse_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
