/root/repo/target/debug/deps/reuse_roundtrip-db83626b2a45e2cd.d: tests/reuse_roundtrip.rs

/root/repo/target/debug/deps/reuse_roundtrip-db83626b2a45e2cd: tests/reuse_roundtrip.rs

tests/reuse_roundtrip.rs:
