/root/repo/target/debug/deps/datapath-8f3c0b5f2f71acd5.d: tests/datapath.rs

/root/repo/target/debug/deps/datapath-8f3c0b5f2f71acd5: tests/datapath.rs

tests/datapath.rs:
