/root/repo/target/debug/deps/fig11b-ff3d3c84330ee4f1.d: crates/bench/benches/fig11b.rs Cargo.toml

/root/repo/target/debug/deps/libfig11b-ff3d3c84330ee4f1.rmeta: crates/bench/benches/fig11b.rs Cargo.toml

crates/bench/benches/fig11b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
