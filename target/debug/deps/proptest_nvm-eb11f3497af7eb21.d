/root/repo/target/debug/deps/proptest_nvm-eb11f3497af7eb21.d: crates/nvm/tests/proptest_nvm.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_nvm-eb11f3497af7eb21.rmeta: crates/nvm/tests/proptest_nvm.rs Cargo.toml

crates/nvm/tests/proptest_nvm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
