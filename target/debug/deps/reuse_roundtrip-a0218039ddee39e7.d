/root/repo/target/debug/deps/reuse_roundtrip-a0218039ddee39e7.d: tests/reuse_roundtrip.rs

/root/repo/target/debug/deps/reuse_roundtrip-a0218039ddee39e7: tests/reuse_roundtrip.rs

tests/reuse_roundtrip.rs:
