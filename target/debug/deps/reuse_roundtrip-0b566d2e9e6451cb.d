/root/repo/target/debug/deps/reuse_roundtrip-0b566d2e9e6451cb.d: tests/reuse_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libreuse_roundtrip-0b566d2e9e6451cb.rmeta: tests/reuse_roundtrip.rs Cargo.toml

tests/reuse_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
