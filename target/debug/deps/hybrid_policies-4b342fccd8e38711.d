/root/repo/target/debug/deps/hybrid_policies-4b342fccd8e38711.d: crates/core/tests/hybrid_policies.rs

/root/repo/target/debug/deps/hybrid_policies-4b342fccd8e38711: crates/core/tests/hybrid_policies.rs

crates/core/tests/hybrid_policies.rs:
