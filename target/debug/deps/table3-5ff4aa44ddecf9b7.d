/root/repo/target/debug/deps/table3-5ff4aa44ddecf9b7.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-5ff4aa44ddecf9b7.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
