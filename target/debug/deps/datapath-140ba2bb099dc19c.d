/root/repo/target/debug/deps/datapath-140ba2bb099dc19c.d: tests/datapath.rs

/root/repo/target/debug/deps/datapath-140ba2bb099dc19c: tests/datapath.rs

tests/datapath.rs:
