/root/repo/target/debug/deps/fig11a-993a28a1a8789742.d: crates/bench/benches/fig11a.rs Cargo.toml

/root/repo/target/debug/deps/libfig11a-993a28a1a8789742.rmeta: crates/bench/benches/fig11a.rs Cargo.toml

crates/bench/benches/fig11a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
