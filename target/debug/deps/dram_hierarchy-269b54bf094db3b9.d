/root/repo/target/debug/deps/dram_hierarchy-269b54bf094db3b9.d: tests/dram_hierarchy.rs

/root/repo/target/debug/deps/dram_hierarchy-269b54bf094db3b9: tests/dram_hierarchy.rs

tests/dram_hierarchy.rs:
