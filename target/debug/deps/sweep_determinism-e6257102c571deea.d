/root/repo/target/debug/deps/sweep_determinism-e6257102c571deea.d: tests/sweep_determinism.rs

/root/repo/target/debug/deps/sweep_determinism-e6257102c571deea: tests/sweep_determinism.rs

tests/sweep_determinism.rs:
