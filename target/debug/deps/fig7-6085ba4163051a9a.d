/root/repo/target/debug/deps/fig7-6085ba4163051a9a.d: crates/bench/benches/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-6085ba4163051a9a.rmeta: crates/bench/benches/fig7.rs Cargo.toml

crates/bench/benches/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
