/root/repo/target/debug/deps/hllc_trace-c8a2500de2dbf5f6.d: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs

/root/repo/target/debug/deps/libhllc_trace-c8a2500de2dbf5f6.rlib: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs

/root/repo/target/debug/deps/libhllc_trace-c8a2500de2dbf5f6.rmeta: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs

crates/trace/src/lib.rs:
crates/trace/src/app.rs:
crates/trace/src/data.rs:
crates/trace/src/driver.rs:
crates/trace/src/mix.rs:
crates/trace/src/pattern.rs:
crates/trace/src/profile.rs:
crates/trace/src/spec.rs:
