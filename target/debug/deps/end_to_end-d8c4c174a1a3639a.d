/root/repo/target/debug/deps/end_to_end-d8c4c174a1a3639a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d8c4c174a1a3639a: tests/end_to_end.rs

tests/end_to_end.rs:
