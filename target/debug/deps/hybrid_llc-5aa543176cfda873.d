/root/repo/target/debug/deps/hybrid_llc-5aa543176cfda873.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_llc-5aa543176cfda873.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
