/root/repo/target/debug/deps/hllc_traceio-a53cf69dc283fd86.d: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_traceio-a53cf69dc283fd86.rmeta: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs Cargo.toml

crates/traceio/src/lib.rs:
crates/traceio/src/crc32.rs:
crates/traceio/src/format.rs:
crates/traceio/src/reader.rs:
crates/traceio/src/record.rs:
crates/traceio/src/replay.rs:
crates/traceio/src/varint.rs:
crates/traceio/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
