/root/repo/target/debug/deps/hllc_forecast-0cd2ae526142fedd.d: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs

/root/repo/target/debug/deps/libhllc_forecast-0cd2ae526142fedd.rlib: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs

/root/repo/target/debug/deps/libhllc_forecast-0cd2ae526142fedd.rmeta: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs

crates/forecast/src/lib.rs:
crates/forecast/src/phase.rs:
crates/forecast/src/predict.rs:
crates/forecast/src/procedure.rs:
crates/forecast/src/series.rs:
