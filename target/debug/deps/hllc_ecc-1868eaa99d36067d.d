/root/repo/target/debug/deps/hllc_ecc-1868eaa99d36067d.d: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs

/root/repo/target/debug/deps/hllc_ecc-1868eaa99d36067d: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs

crates/ecc/src/lib.rs:
crates/ecc/src/bitvec.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/secded.rs:
