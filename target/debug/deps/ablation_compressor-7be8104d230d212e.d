/root/repo/target/debug/deps/ablation_compressor-7be8104d230d212e.d: crates/bench/benches/ablation_compressor.rs Cargo.toml

/root/repo/target/debug/deps/libablation_compressor-7be8104d230d212e.rmeta: crates/bench/benches/ablation_compressor.rs Cargo.toml

crates/bench/benches/ablation_compressor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
