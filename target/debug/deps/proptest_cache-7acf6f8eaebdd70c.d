/root/repo/target/debug/deps/proptest_cache-7acf6f8eaebdd70c.d: crates/sim/tests/proptest_cache.rs

/root/repo/target/debug/deps/proptest_cache-7acf6f8eaebdd70c: crates/sim/tests/proptest_cache.rs

crates/sim/tests/proptest_cache.rs:
