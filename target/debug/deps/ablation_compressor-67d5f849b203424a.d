/root/repo/target/debug/deps/ablation_compressor-67d5f849b203424a.d: crates/bench/benches/ablation_compressor.rs Cargo.toml

/root/repo/target/debug/deps/libablation_compressor-67d5f849b203424a.rmeta: crates/bench/benches/ablation_compressor.rs Cargo.toml

crates/bench/benches/ablation_compressor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
