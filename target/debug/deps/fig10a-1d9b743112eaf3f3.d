/root/repo/target/debug/deps/fig10a-1d9b743112eaf3f3.d: crates/bench/benches/fig10a.rs Cargo.toml

/root/repo/target/debug/deps/libfig10a-1d9b743112eaf3f3.rmeta: crates/bench/benches/fig10a.rs Cargo.toml

crates/bench/benches/fig10a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
