/root/repo/target/debug/deps/forecast_pipeline-9e96b8dfeef0cd12.d: tests/forecast_pipeline.rs

/root/repo/target/debug/deps/forecast_pipeline-9e96b8dfeef0cd12: tests/forecast_pipeline.rs

tests/forecast_pipeline.rs:
