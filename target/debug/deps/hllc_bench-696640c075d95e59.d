/root/repo/target/debug/deps/hllc_bench-696640c075d95e59.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/debug/deps/hllc_bench-696640c075d95e59: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
