/root/repo/target/debug/deps/hllc_core-9668a2a380426f81.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_core-9668a2a380426f81.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/dueling.rs:
crates/core/src/hybrid.rs:
crates/core/src/line.rs:
crates/core/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
