/root/repo/target/debug/deps/hllc_runner-4a45477fb88aeb4d.d: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/debug/deps/libhllc_runner-4a45477fb88aeb4d.rlib: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/debug/deps/libhllc_runner-4a45477fb88aeb4d.rmeta: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

crates/runner/src/lib.rs:
crates/runner/src/pool.rs:
crates/runner/src/seed.rs:
crates/runner/src/sweep.rs:
