/root/repo/target/debug/deps/dueling_adaptation-d1a185aacbc38ba9.d: crates/core/tests/dueling_adaptation.rs

/root/repo/target/debug/deps/dueling_adaptation-d1a185aacbc38ba9: crates/core/tests/dueling_adaptation.rs

crates/core/tests/dueling_adaptation.rs:
