/root/repo/target/debug/deps/trace_seed_properties-fc31aed6c40f6f3b.d: tests/trace_seed_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_seed_properties-fc31aed6c40f6f3b.rmeta: tests/trace_seed_properties.rs Cargo.toml

tests/trace_seed_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
