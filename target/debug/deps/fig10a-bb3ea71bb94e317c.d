/root/repo/target/debug/deps/fig10a-bb3ea71bb94e317c.d: crates/bench/benches/fig10a.rs Cargo.toml

/root/repo/target/debug/deps/libfig10a-bb3ea71bb94e317c.rmeta: crates/bench/benches/fig10a.rs Cargo.toml

crates/bench/benches/fig10a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
