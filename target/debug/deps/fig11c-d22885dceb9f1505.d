/root/repo/target/debug/deps/fig11c-d22885dceb9f1505.d: crates/bench/benches/fig11c.rs Cargo.toml

/root/repo/target/debug/deps/libfig11c-d22885dceb9f1505.rmeta: crates/bench/benches/fig11c.rs Cargo.toml

crates/bench/benches/fig11c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
