/root/repo/target/debug/deps/hllc_ecc-59bcdf3baf5cf795.d: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs

/root/repo/target/debug/deps/libhllc_ecc-59bcdf3baf5cf795.rlib: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs

/root/repo/target/debug/deps/libhllc_ecc-59bcdf3baf5cf795.rmeta: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs

crates/ecc/src/lib.rs:
crates/ecc/src/bitvec.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/secded.rs:
