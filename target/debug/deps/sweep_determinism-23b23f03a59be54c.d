/root/repo/target/debug/deps/sweep_determinism-23b23f03a59be54c.d: tests/sweep_determinism.rs

/root/repo/target/debug/deps/sweep_determinism-23b23f03a59be54c: tests/sweep_determinism.rs

tests/sweep_determinism.rs:
