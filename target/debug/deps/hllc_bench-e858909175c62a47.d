/root/repo/target/debug/deps/hllc_bench-e858909175c62a47.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_bench-e858909175c62a47.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
