/root/repo/target/debug/deps/proptest_secded-4a3c7f9045241d34.d: crates/ecc/tests/proptest_secded.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_secded-4a3c7f9045241d34.rmeta: crates/ecc/tests/proptest_secded.rs Cargo.toml

crates/ecc/tests/proptest_secded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
