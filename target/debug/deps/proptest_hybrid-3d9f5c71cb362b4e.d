/root/repo/target/debug/deps/proptest_hybrid-3d9f5c71cb362b4e.d: crates/core/tests/proptest_hybrid.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_hybrid-3d9f5c71cb362b4e.rmeta: crates/core/tests/proptest_hybrid.rs Cargo.toml

crates/core/tests/proptest_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
