/root/repo/target/debug/deps/dram_hierarchy-6ee3c636e6ca0a5e.d: tests/dram_hierarchy.rs

/root/repo/target/debug/deps/dram_hierarchy-6ee3c636e6ca0a5e: tests/dram_hierarchy.rs

tests/dram_hierarchy.rs:
