/root/repo/target/debug/deps/trace_roundtrip-7ae234260719e3ee.d: tests/trace_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_roundtrip-7ae234260719e3ee.rmeta: tests/trace_roundtrip.rs Cargo.toml

tests/trace_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
