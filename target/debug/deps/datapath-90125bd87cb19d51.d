/root/repo/target/debug/deps/datapath-90125bd87cb19d51.d: tests/datapath.rs Cargo.toml

/root/repo/target/debug/deps/libdatapath-90125bd87cb19d51.rmeta: tests/datapath.rs Cargo.toml

tests/datapath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
