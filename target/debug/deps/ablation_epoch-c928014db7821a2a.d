/root/repo/target/debug/deps/ablation_epoch-c928014db7821a2a.d: crates/bench/benches/ablation_epoch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_epoch-c928014db7821a2a.rmeta: crates/bench/benches/ablation_epoch.rs Cargo.toml

crates/bench/benches/ablation_epoch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
