/root/repo/target/debug/deps/hllc_compress-de12bcb55956beca.d: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs

/root/repo/target/debug/deps/hllc_compress-de12bcb55956beca: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs

crates/compress/src/lib.rs:
crates/compress/src/analysis.rs:
crates/compress/src/bdi.rs:
crates/compress/src/block.rs:
crates/compress/src/encoding.rs:
crates/compress/src/fpc.rs:
