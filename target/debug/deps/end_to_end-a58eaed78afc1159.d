/root/repo/target/debug/deps/end_to_end-a58eaed78afc1159.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a58eaed78afc1159: tests/end_to_end.rs

tests/end_to_end.rs:
