/root/repo/target/debug/deps/hllc_bench-16ba4c3c4883480a.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/debug/deps/libhllc_bench-16ba4c3c4883480a.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/debug/deps/libhllc_bench-16ba4c3c4883480a.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
