/root/repo/target/debug/deps/trace_roundtrip-93974ddd1d169220.d: tests/trace_roundtrip.rs

/root/repo/target/debug/deps/trace_roundtrip-93974ddd1d169220: tests/trace_roundtrip.rs

tests/trace_roundtrip.rs:
