/root/repo/target/debug/deps/energy-883fe5757e3adf49.d: crates/bench/benches/energy.rs Cargo.toml

/root/repo/target/debug/deps/libenergy-883fe5757e3adf49.rmeta: crates/bench/benches/energy.rs Cargo.toml

crates/bench/benches/energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
