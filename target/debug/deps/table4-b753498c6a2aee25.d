/root/repo/target/debug/deps/table4-b753498c6a2aee25.d: crates/bench/benches/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-b753498c6a2aee25.rmeta: crates/bench/benches/table4.rs Cargo.toml

crates/bench/benches/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
