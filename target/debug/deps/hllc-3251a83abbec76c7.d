/root/repo/target/debug/deps/hllc-3251a83abbec76c7.d: src/bin/hllc.rs

/root/repo/target/debug/deps/hllc-3251a83abbec76c7: src/bin/hllc.rs

src/bin/hllc.rs:
