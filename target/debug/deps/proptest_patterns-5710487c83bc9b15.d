/root/repo/target/debug/deps/proptest_patterns-5710487c83bc9b15.d: crates/trace/tests/proptest_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_patterns-5710487c83bc9b15.rmeta: crates/trace/tests/proptest_patterns.rs Cargo.toml

crates/trace/tests/proptest_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
