/root/repo/target/debug/deps/hllc_forecast-0dc18dc7d38546c6.d: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs

/root/repo/target/debug/deps/hllc_forecast-0dc18dc7d38546c6: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs

crates/forecast/src/lib.rs:
crates/forecast/src/phase.rs:
crates/forecast/src/predict.rs:
crates/forecast/src/procedure.rs:
crates/forecast/src/series.rs:
