/root/repo/target/debug/deps/dueling_adaptation-beb9a2ed05b0dcd5.d: crates/core/tests/dueling_adaptation.rs Cargo.toml

/root/repo/target/debug/deps/libdueling_adaptation-beb9a2ed05b0dcd5.rmeta: crates/core/tests/dueling_adaptation.rs Cargo.toml

crates/core/tests/dueling_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
