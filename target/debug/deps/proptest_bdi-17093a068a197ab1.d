/root/repo/target/debug/deps/proptest_bdi-17093a068a197ab1.d: crates/compress/tests/proptest_bdi.rs

/root/repo/target/debug/deps/proptest_bdi-17093a068a197ab1: crates/compress/tests/proptest_bdi.rs

crates/compress/tests/proptest_bdi.rs:
