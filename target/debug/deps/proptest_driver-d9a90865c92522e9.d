/root/repo/target/debug/deps/proptest_driver-d9a90865c92522e9.d: crates/trace/tests/proptest_driver.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_driver-d9a90865c92522e9.rmeta: crates/trace/tests/proptest_driver.rs Cargo.toml

crates/trace/tests/proptest_driver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
