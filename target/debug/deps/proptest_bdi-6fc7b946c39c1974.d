/root/repo/target/debug/deps/proptest_bdi-6fc7b946c39c1974.d: crates/compress/tests/proptest_bdi.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_bdi-6fc7b946c39c1974.rmeta: crates/compress/tests/proptest_bdi.rs Cargo.toml

crates/compress/tests/proptest_bdi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
