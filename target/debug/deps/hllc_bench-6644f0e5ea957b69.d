/root/repo/target/debug/deps/hllc_bench-6644f0e5ea957b69.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_bench-6644f0e5ea957b69.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
