/root/repo/target/debug/deps/hybrid_llc-40848c99b0c0a010.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/hybrid_llc-40848c99b0c0a010: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
