/root/repo/target/debug/deps/proptest_patterns-65b1da25d46db42a.d: crates/trace/tests/proptest_patterns.rs

/root/repo/target/debug/deps/proptest_patterns-65b1da25d46db42a: crates/trace/tests/proptest_patterns.rs

crates/trace/tests/proptest_patterns.rs:
