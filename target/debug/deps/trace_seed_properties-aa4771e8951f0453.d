/root/repo/target/debug/deps/trace_seed_properties-aa4771e8951f0453.d: tests/trace_seed_properties.rs

/root/repo/target/debug/deps/trace_seed_properties-aa4771e8951f0453: tests/trace_seed_properties.rs

tests/trace_seed_properties.rs:
