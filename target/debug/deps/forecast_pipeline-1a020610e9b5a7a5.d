/root/repo/target/debug/deps/forecast_pipeline-1a020610e9b5a7a5.d: tests/forecast_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libforecast_pipeline-1a020610e9b5a7a5.rmeta: tests/forecast_pipeline.rs Cargo.toml

tests/forecast_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
