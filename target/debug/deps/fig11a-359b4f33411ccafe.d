/root/repo/target/debug/deps/fig11a-359b4f33411ccafe.d: crates/bench/benches/fig11a.rs Cargo.toml

/root/repo/target/debug/deps/libfig11a-359b4f33411ccafe.rmeta: crates/bench/benches/fig11a.rs Cargo.toml

crates/bench/benches/fig11a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
