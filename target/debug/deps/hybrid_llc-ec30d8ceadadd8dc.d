/root/repo/target/debug/deps/hybrid_llc-ec30d8ceadadd8dc.d: src/lib.rs src/cli.rs src/session.rs

/root/repo/target/debug/deps/hybrid_llc-ec30d8ceadadd8dc: src/lib.rs src/cli.rs src/session.rs

src/lib.rs:
src/cli.rs:
src/session.rs:
