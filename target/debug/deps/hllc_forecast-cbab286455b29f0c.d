/root/repo/target/debug/deps/hllc_forecast-cbab286455b29f0c.d: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_forecast-cbab286455b29f0c.rmeta: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs Cargo.toml

crates/forecast/src/lib.rs:
crates/forecast/src/phase.rs:
crates/forecast/src/predict.rs:
crates/forecast/src/procedure.rs:
crates/forecast/src/series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
