/root/repo/target/debug/deps/proptest_cache-424448913249239b.d: crates/sim/tests/proptest_cache.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_cache-424448913249239b.rmeta: crates/sim/tests/proptest_cache.rs Cargo.toml

crates/sim/tests/proptest_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
