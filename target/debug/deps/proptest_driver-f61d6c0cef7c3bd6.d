/root/repo/target/debug/deps/proptest_driver-f61d6c0cef7c3bd6.d: crates/trace/tests/proptest_driver.rs

/root/repo/target/debug/deps/proptest_driver-f61d6c0cef7c3bd6: crates/trace/tests/proptest_driver.rs

crates/trace/tests/proptest_driver.rs:
