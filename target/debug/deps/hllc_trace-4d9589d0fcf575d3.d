/root/repo/target/debug/deps/hllc_trace-4d9589d0fcf575d3.d: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs

/root/repo/target/debug/deps/hllc_trace-4d9589d0fcf575d3: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs

crates/trace/src/lib.rs:
crates/trace/src/app.rs:
crates/trace/src/data.rs:
crates/trace/src/driver.rs:
crates/trace/src/mix.rs:
crates/trace/src/pattern.rs:
crates/trace/src/profile.rs:
crates/trace/src/spec.rs:
