/root/repo/target/debug/deps/hllc-7e81edafde701156.d: src/bin/hllc.rs

/root/repo/target/debug/deps/hllc-7e81edafde701156: src/bin/hllc.rs

src/bin/hllc.rs:
