/root/repo/target/debug/deps/hllc-75487f1745c6b936.d: src/bin/hllc.rs

/root/repo/target/debug/deps/hllc-75487f1745c6b936: src/bin/hllc.rs

src/bin/hllc.rs:
