/root/repo/target/debug/deps/hllc_bench-476c0070ee8dacf7.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/debug/deps/libhllc_bench-476c0070ee8dacf7.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/debug/deps/libhllc_bench-476c0070ee8dacf7.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
