/root/repo/target/debug/deps/hllc_runner-354b7eb775172ad9.d: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/debug/deps/hllc_runner-354b7eb775172ad9: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

crates/runner/src/lib.rs:
crates/runner/src/pool.rs:
crates/runner/src/seed.rs:
crates/runner/src/sweep.rs:
