/root/repo/target/debug/deps/ablation_memory-39c29aa183ee0e2f.d: crates/bench/benches/ablation_memory.rs Cargo.toml

/root/repo/target/debug/deps/libablation_memory-39c29aa183ee0e2f.rmeta: crates/bench/benches/ablation_memory.rs Cargo.toml

crates/bench/benches/ablation_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
