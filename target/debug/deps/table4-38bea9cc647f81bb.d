/root/repo/target/debug/deps/table4-38bea9cc647f81bb.d: crates/bench/benches/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-38bea9cc647f81bb.rmeta: crates/bench/benches/table4.rs Cargo.toml

crates/bench/benches/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
