/root/repo/target/debug/deps/hllc_bench-65bfbeaad63adcd9.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/debug/deps/libhllc_bench-65bfbeaad63adcd9.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/debug/deps/libhllc_bench-65bfbeaad63adcd9.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
