/root/repo/target/debug/deps/datapath-dd5f1e88312c1400.d: tests/datapath.rs

/root/repo/target/debug/deps/datapath-dd5f1e88312c1400: tests/datapath.rs

tests/datapath.rs:
