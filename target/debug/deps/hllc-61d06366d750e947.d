/root/repo/target/debug/deps/hllc-61d06366d750e947.d: src/bin/hllc.rs Cargo.toml

/root/repo/target/debug/deps/libhllc-61d06366d750e947.rmeta: src/bin/hllc.rs Cargo.toml

src/bin/hllc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
