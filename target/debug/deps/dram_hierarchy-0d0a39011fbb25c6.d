/root/repo/target/debug/deps/dram_hierarchy-0d0a39011fbb25c6.d: tests/dram_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libdram_hierarchy-0d0a39011fbb25c6.rmeta: tests/dram_hierarchy.rs Cargo.toml

tests/dram_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
