/root/repo/target/debug/deps/coherence_sharing-1e6c83bdcb517cac.d: crates/sim/tests/coherence_sharing.rs

/root/repo/target/debug/deps/coherence_sharing-1e6c83bdcb517cac: crates/sim/tests/coherence_sharing.rs

crates/sim/tests/coherence_sharing.rs:
