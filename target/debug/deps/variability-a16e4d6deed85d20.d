/root/repo/target/debug/deps/variability-a16e4d6deed85d20.d: crates/bench/benches/variability.rs Cargo.toml

/root/repo/target/debug/deps/libvariability-a16e4d6deed85d20.rmeta: crates/bench/benches/variability.rs Cargo.toml

crates/bench/benches/variability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
