/root/repo/target/debug/deps/hllc_sim-69c1da05b844812b.d: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/address.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/data.rs crates/sim/src/dram.rs crates/sim/src/energy.rs crates/sim/src/hierarchy.rs crates/sim/src/llc.rs crates/sim/src/stats.rs crates/sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_sim-69c1da05b844812b.rmeta: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/address.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/data.rs crates/sim/src/dram.rs crates/sim/src/energy.rs crates/sim/src/hierarchy.rs crates/sim/src/llc.rs crates/sim/src/stats.rs crates/sim/src/timing.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/access.rs:
crates/sim/src/address.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/data.rs:
crates/sim/src/dram.rs:
crates/sim/src/energy.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/llc.rs:
crates/sim/src/stats.rs:
crates/sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
