/root/repo/target/debug/deps/hllc_ecc-5cf220b7d843a35e.d: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_ecc-5cf220b7d843a35e.rmeta: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs Cargo.toml

crates/ecc/src/lib.rs:
crates/ecc/src/bitvec.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/secded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
