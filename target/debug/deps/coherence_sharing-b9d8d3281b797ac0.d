/root/repo/target/debug/deps/coherence_sharing-b9d8d3281b797ac0.d: crates/sim/tests/coherence_sharing.rs Cargo.toml

/root/repo/target/debug/deps/libcoherence_sharing-b9d8d3281b797ac0.rmeta: crates/sim/tests/coherence_sharing.rs Cargo.toml

crates/sim/tests/coherence_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
