/root/repo/target/debug/deps/proptest_hybrid-883ca82695249032.d: crates/core/tests/proptest_hybrid.rs

/root/repo/target/debug/deps/proptest_hybrid-883ca82695249032: crates/core/tests/proptest_hybrid.rs

crates/core/tests/proptest_hybrid.rs:
