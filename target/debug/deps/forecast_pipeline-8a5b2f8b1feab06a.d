/root/repo/target/debug/deps/forecast_pipeline-8a5b2f8b1feab06a.d: tests/forecast_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libforecast_pipeline-8a5b2f8b1feab06a.rmeta: tests/forecast_pipeline.rs Cargo.toml

tests/forecast_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
