/root/repo/target/debug/deps/serde_json-c60f4baa74d2bd95.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-c60f4baa74d2bd95: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
