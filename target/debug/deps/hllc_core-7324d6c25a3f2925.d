/root/repo/target/debug/deps/hllc_core-7324d6c25a3f2925.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs

/root/repo/target/debug/deps/libhllc_core-7324d6c25a3f2925.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs

/root/repo/target/debug/deps/libhllc_core-7324d6c25a3f2925.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/dueling.rs:
crates/core/src/hybrid.rs:
crates/core/src/line.rs:
crates/core/src/policy.rs:
