/root/repo/target/debug/deps/hllc-aef9fb1569a9d22b.d: src/bin/hllc.rs Cargo.toml

/root/repo/target/debug/deps/libhllc-aef9fb1569a9d22b.rmeta: src/bin/hllc.rs Cargo.toml

src/bin/hllc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
