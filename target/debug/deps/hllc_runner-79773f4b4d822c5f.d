/root/repo/target/debug/deps/hllc_runner-79773f4b4d822c5f.d: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/debug/deps/hllc_runner-79773f4b4d822c5f: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

crates/runner/src/lib.rs:
crates/runner/src/pool.rs:
crates/runner/src/seed.rs:
crates/runner/src/sweep.rs:
