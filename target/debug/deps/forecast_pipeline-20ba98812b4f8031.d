/root/repo/target/debug/deps/forecast_pipeline-20ba98812b4f8031.d: tests/forecast_pipeline.rs

/root/repo/target/debug/deps/forecast_pipeline-20ba98812b4f8031: tests/forecast_pipeline.rs

tests/forecast_pipeline.rs:
