/root/repo/target/debug/deps/hllc_ecc-3172087804b451a6.d: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_ecc-3172087804b451a6.rmeta: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs Cargo.toml

crates/ecc/src/lib.rs:
crates/ecc/src/bitvec.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/secded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
