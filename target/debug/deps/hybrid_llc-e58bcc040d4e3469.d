/root/repo/target/debug/deps/hybrid_llc-e58bcc040d4e3469.d: src/lib.rs src/cli.rs src/session.rs

/root/repo/target/debug/deps/libhybrid_llc-e58bcc040d4e3469.rlib: src/lib.rs src/cli.rs src/session.rs

/root/repo/target/debug/deps/libhybrid_llc-e58bcc040d4e3469.rmeta: src/lib.rs src/cli.rs src/session.rs

src/lib.rs:
src/cli.rs:
src/session.rs:
