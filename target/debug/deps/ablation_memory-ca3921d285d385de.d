/root/repo/target/debug/deps/ablation_memory-ca3921d285d385de.d: crates/bench/benches/ablation_memory.rs Cargo.toml

/root/repo/target/debug/deps/libablation_memory-ca3921d285d385de.rmeta: crates/bench/benches/ablation_memory.rs Cargo.toml

crates/bench/benches/ablation_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
