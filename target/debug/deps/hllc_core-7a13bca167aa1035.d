/root/repo/target/debug/deps/hllc_core-7a13bca167aa1035.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs

/root/repo/target/debug/deps/hllc_core-7a13bca167aa1035: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/dueling.rs:
crates/core/src/hybrid.rs:
crates/core/src/line.rs:
crates/core/src/policy.rs:
