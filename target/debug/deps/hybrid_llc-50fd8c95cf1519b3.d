/root/repo/target/debug/deps/hybrid_llc-50fd8c95cf1519b3.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libhybrid_llc-50fd8c95cf1519b3.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libhybrid_llc-50fd8c95cf1519b3.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
