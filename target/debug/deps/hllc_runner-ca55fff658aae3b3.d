/root/repo/target/debug/deps/hllc_runner-ca55fff658aae3b3.d: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_runner-ca55fff658aae3b3.rmeta: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs Cargo.toml

crates/runner/src/lib.rs:
crates/runner/src/pool.rs:
crates/runner/src/seed.rs:
crates/runner/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
