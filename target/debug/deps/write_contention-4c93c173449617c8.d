/root/repo/target/debug/deps/write_contention-4c93c173449617c8.d: crates/core/tests/write_contention.rs Cargo.toml

/root/repo/target/debug/deps/libwrite_contention-4c93c173449617c8.rmeta: crates/core/tests/write_contention.rs Cargo.toml

crates/core/tests/write_contention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
