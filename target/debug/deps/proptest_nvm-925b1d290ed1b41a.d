/root/repo/target/debug/deps/proptest_nvm-925b1d290ed1b41a.d: crates/nvm/tests/proptest_nvm.rs

/root/repo/target/debug/deps/proptest_nvm-925b1d290ed1b41a: crates/nvm/tests/proptest_nvm.rs

crates/nvm/tests/proptest_nvm.rs:
