/root/repo/target/debug/deps/hllc-859002e88e9caa47.d: src/bin/hllc.rs

/root/repo/target/debug/deps/hllc-859002e88e9caa47: src/bin/hllc.rs

src/bin/hllc.rs:
