/root/repo/target/debug/deps/hybrid_policies-231e918d38caf6d7.d: crates/core/tests/hybrid_policies.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_policies-231e918d38caf6d7.rmeta: crates/core/tests/hybrid_policies.rs Cargo.toml

crates/core/tests/hybrid_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
