/root/repo/target/debug/deps/hllc_nvm-9d37723ddb36159e.d: crates/nvm/src/lib.rs crates/nvm/src/array.rs crates/nvm/src/endurance.rs crates/nvm/src/fault_map.rs crates/nvm/src/frame.rs crates/nvm/src/rearrange.rs crates/nvm/src/setlevel.rs crates/nvm/src/wear.rs Cargo.toml

/root/repo/target/debug/deps/libhllc_nvm-9d37723ddb36159e.rmeta: crates/nvm/src/lib.rs crates/nvm/src/array.rs crates/nvm/src/endurance.rs crates/nvm/src/fault_map.rs crates/nvm/src/frame.rs crates/nvm/src/rearrange.rs crates/nvm/src/setlevel.rs crates/nvm/src/wear.rs Cargo.toml

crates/nvm/src/lib.rs:
crates/nvm/src/array.rs:
crates/nvm/src/endurance.rs:
crates/nvm/src/fault_map.rs:
crates/nvm/src/frame.rs:
crates/nvm/src/rearrange.rs:
crates/nvm/src/setlevel.rs:
crates/nvm/src/wear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
