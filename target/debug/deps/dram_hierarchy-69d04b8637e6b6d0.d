/root/repo/target/debug/deps/dram_hierarchy-69d04b8637e6b6d0.d: tests/dram_hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libdram_hierarchy-69d04b8637e6b6d0.rmeta: tests/dram_hierarchy.rs Cargo.toml

tests/dram_hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
