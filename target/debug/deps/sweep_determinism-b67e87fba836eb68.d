/root/repo/target/debug/deps/sweep_determinism-b67e87fba836eb68.d: tests/sweep_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_determinism-b67e87fba836eb68.rmeta: tests/sweep_determinism.rs Cargo.toml

tests/sweep_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
