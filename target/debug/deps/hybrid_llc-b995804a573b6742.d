/root/repo/target/debug/deps/hybrid_llc-b995804a573b6742.d: src/lib.rs src/cli.rs src/session.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_llc-b995804a573b6742.rmeta: src/lib.rs src/cli.rs src/session.rs Cargo.toml

src/lib.rs:
src/cli.rs:
src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
