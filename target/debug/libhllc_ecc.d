/root/repo/target/debug/libhllc_ecc.rlib: /root/repo/crates/ecc/src/bitvec.rs /root/repo/crates/ecc/src/hamming.rs /root/repo/crates/ecc/src/lib.rs /root/repo/crates/ecc/src/secded.rs
