/root/repo/target/release/deps/fig6-7382c731c923180f.d: crates/bench/benches/fig6.rs

/root/repo/target/release/deps/fig6-7382c731c923180f: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:
