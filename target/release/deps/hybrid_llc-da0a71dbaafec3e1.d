/root/repo/target/release/deps/hybrid_llc-da0a71dbaafec3e1.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libhybrid_llc-da0a71dbaafec3e1.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libhybrid_llc-da0a71dbaafec3e1.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
