/root/repo/target/release/deps/hybrid_llc-ba1d110169cbe9a9.d: src/lib.rs

/root/repo/target/release/deps/libhybrid_llc-ba1d110169cbe9a9.rlib: src/lib.rs

/root/repo/target/release/deps/libhybrid_llc-ba1d110169cbe9a9.rmeta: src/lib.rs

src/lib.rs:
