/root/repo/target/release/deps/hllc_traceio-b84c730d8cd6799c.d: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs

/root/repo/target/release/deps/libhllc_traceio-b84c730d8cd6799c.rlib: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs

/root/repo/target/release/deps/libhllc_traceio-b84c730d8cd6799c.rmeta: crates/traceio/src/lib.rs crates/traceio/src/crc32.rs crates/traceio/src/format.rs crates/traceio/src/reader.rs crates/traceio/src/record.rs crates/traceio/src/replay.rs crates/traceio/src/varint.rs crates/traceio/src/writer.rs

crates/traceio/src/lib.rs:
crates/traceio/src/crc32.rs:
crates/traceio/src/format.rs:
crates/traceio/src/reader.rs:
crates/traceio/src/record.rs:
crates/traceio/src/replay.rs:
crates/traceio/src/varint.rs:
crates/traceio/src/writer.rs:
