/root/repo/target/release/deps/hllc_forecast-66d46a7f379a8e48.d: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs

/root/repo/target/release/deps/libhllc_forecast-66d46a7f379a8e48.rlib: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs

/root/repo/target/release/deps/libhllc_forecast-66d46a7f379a8e48.rmeta: crates/forecast/src/lib.rs crates/forecast/src/phase.rs crates/forecast/src/predict.rs crates/forecast/src/procedure.rs crates/forecast/src/series.rs

crates/forecast/src/lib.rs:
crates/forecast/src/phase.rs:
crates/forecast/src/predict.rs:
crates/forecast/src/procedure.rs:
crates/forecast/src/series.rs:
