/root/repo/target/release/deps/hllc_nvm-0e99a36823ffa909.d: crates/nvm/src/lib.rs crates/nvm/src/array.rs crates/nvm/src/endurance.rs crates/nvm/src/fault_map.rs crates/nvm/src/frame.rs crates/nvm/src/rearrange.rs crates/nvm/src/setlevel.rs crates/nvm/src/wear.rs

/root/repo/target/release/deps/libhllc_nvm-0e99a36823ffa909.rlib: crates/nvm/src/lib.rs crates/nvm/src/array.rs crates/nvm/src/endurance.rs crates/nvm/src/fault_map.rs crates/nvm/src/frame.rs crates/nvm/src/rearrange.rs crates/nvm/src/setlevel.rs crates/nvm/src/wear.rs

/root/repo/target/release/deps/libhllc_nvm-0e99a36823ffa909.rmeta: crates/nvm/src/lib.rs crates/nvm/src/array.rs crates/nvm/src/endurance.rs crates/nvm/src/fault_map.rs crates/nvm/src/frame.rs crates/nvm/src/rearrange.rs crates/nvm/src/setlevel.rs crates/nvm/src/wear.rs

crates/nvm/src/lib.rs:
crates/nvm/src/array.rs:
crates/nvm/src/endurance.rs:
crates/nvm/src/fault_map.rs:
crates/nvm/src/frame.rs:
crates/nvm/src/rearrange.rs:
crates/nvm/src/setlevel.rs:
crates/nvm/src/wear.rs:
