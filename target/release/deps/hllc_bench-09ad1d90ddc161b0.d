/root/repo/target/release/deps/hllc_bench-09ad1d90ddc161b0.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/release/deps/libhllc_bench-09ad1d90ddc161b0.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/release/deps/libhllc_bench-09ad1d90ddc161b0.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
