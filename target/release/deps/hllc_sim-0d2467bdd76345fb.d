/root/repo/target/release/deps/hllc_sim-0d2467bdd76345fb.d: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/address.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/data.rs crates/sim/src/dram.rs crates/sim/src/energy.rs crates/sim/src/hierarchy.rs crates/sim/src/llc.rs crates/sim/src/stats.rs crates/sim/src/timing.rs

/root/repo/target/release/deps/libhllc_sim-0d2467bdd76345fb.rlib: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/address.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/data.rs crates/sim/src/dram.rs crates/sim/src/energy.rs crates/sim/src/hierarchy.rs crates/sim/src/llc.rs crates/sim/src/stats.rs crates/sim/src/timing.rs

/root/repo/target/release/deps/libhllc_sim-0d2467bdd76345fb.rmeta: crates/sim/src/lib.rs crates/sim/src/access.rs crates/sim/src/address.rs crates/sim/src/cache.rs crates/sim/src/config.rs crates/sim/src/data.rs crates/sim/src/dram.rs crates/sim/src/energy.rs crates/sim/src/hierarchy.rs crates/sim/src/llc.rs crates/sim/src/stats.rs crates/sim/src/timing.rs

crates/sim/src/lib.rs:
crates/sim/src/access.rs:
crates/sim/src/address.rs:
crates/sim/src/cache.rs:
crates/sim/src/config.rs:
crates/sim/src/data.rs:
crates/sim/src/dram.rs:
crates/sim/src/energy.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/llc.rs:
crates/sim/src/stats.rs:
crates/sim/src/timing.rs:
