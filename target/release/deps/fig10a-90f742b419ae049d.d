/root/repo/target/release/deps/fig10a-90f742b419ae049d.d: crates/bench/benches/fig10a.rs

/root/repo/target/release/deps/fig10a-90f742b419ae049d: crates/bench/benches/fig10a.rs

crates/bench/benches/fig10a.rs:
