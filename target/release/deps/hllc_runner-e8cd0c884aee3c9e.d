/root/repo/target/release/deps/hllc_runner-e8cd0c884aee3c9e.d: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/release/deps/libhllc_runner-e8cd0c884aee3c9e.rlib: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/release/deps/libhllc_runner-e8cd0c884aee3c9e.rmeta: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

crates/runner/src/lib.rs:
crates/runner/src/pool.rs:
crates/runner/src/seed.rs:
crates/runner/src/sweep.rs:
