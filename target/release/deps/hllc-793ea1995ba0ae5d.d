/root/repo/target/release/deps/hllc-793ea1995ba0ae5d.d: src/bin/hllc.rs

/root/repo/target/release/deps/hllc-793ea1995ba0ae5d: src/bin/hllc.rs

src/bin/hllc.rs:
