/root/repo/target/release/deps/serde_json-93c128af25d8d66d.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-93c128af25d8d66d.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-93c128af25d8d66d.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
