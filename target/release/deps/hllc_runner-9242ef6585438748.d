/root/repo/target/release/deps/hllc_runner-9242ef6585438748.d: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/release/deps/libhllc_runner-9242ef6585438748.rlib: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

/root/repo/target/release/deps/libhllc_runner-9242ef6585438748.rmeta: crates/runner/src/lib.rs crates/runner/src/pool.rs crates/runner/src/seed.rs crates/runner/src/sweep.rs

crates/runner/src/lib.rs:
crates/runner/src/pool.rs:
crates/runner/src/seed.rs:
crates/runner/src/sweep.rs:
