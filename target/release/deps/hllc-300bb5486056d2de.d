/root/repo/target/release/deps/hllc-300bb5486056d2de.d: src/bin/hllc.rs

/root/repo/target/release/deps/hllc-300bb5486056d2de: src/bin/hllc.rs

src/bin/hllc.rs:
