/root/repo/target/release/deps/fig6-38b70fd7e3d33689.d: crates/bench/benches/fig6.rs

/root/repo/target/release/deps/fig6-38b70fd7e3d33689: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:
