/root/repo/target/release/deps/hybrid_llc-1148051f094edea7.d: src/lib.rs src/cli.rs src/session.rs

/root/repo/target/release/deps/libhybrid_llc-1148051f094edea7.rlib: src/lib.rs src/cli.rs src/session.rs

/root/repo/target/release/deps/libhybrid_llc-1148051f094edea7.rmeta: src/lib.rs src/cli.rs src/session.rs

src/lib.rs:
src/cli.rs:
src/session.rs:
