/root/repo/target/release/deps/hllc_ecc-901e125dcb08a671.d: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs

/root/repo/target/release/deps/libhllc_ecc-901e125dcb08a671.rlib: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs

/root/repo/target/release/deps/libhllc_ecc-901e125dcb08a671.rmeta: crates/ecc/src/lib.rs crates/ecc/src/bitvec.rs crates/ecc/src/hamming.rs crates/ecc/src/secded.rs

crates/ecc/src/lib.rs:
crates/ecc/src/bitvec.rs:
crates/ecc/src/hamming.rs:
crates/ecc/src/secded.rs:
