/root/repo/target/release/deps/hllc_bench-1e407948217491e6.d: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/release/deps/libhllc_bench-1e407948217491e6.rlib: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

/root/repo/target/release/deps/libhllc_bench-1e407948217491e6.rmeta: crates/bench/src/lib.rs crates/bench/src/exp.rs crates/bench/src/report.rs crates/bench/src/stats.rs

crates/bench/src/lib.rs:
crates/bench/src/exp.rs:
crates/bench/src/report.rs:
crates/bench/src/stats.rs:
