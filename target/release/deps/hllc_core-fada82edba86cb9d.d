/root/repo/target/release/deps/hllc_core-fada82edba86cb9d.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs

/root/repo/target/release/deps/libhllc_core-fada82edba86cb9d.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs

/root/repo/target/release/deps/libhllc_core-fada82edba86cb9d.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/dueling.rs crates/core/src/hybrid.rs crates/core/src/line.rs crates/core/src/policy.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/dueling.rs:
crates/core/src/hybrid.rs:
crates/core/src/line.rs:
crates/core/src/policy.rs:
