/root/repo/target/release/deps/hllc_compress-8ef6b7df622e4e3f.d: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs

/root/repo/target/release/deps/libhllc_compress-8ef6b7df622e4e3f.rlib: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs

/root/repo/target/release/deps/libhllc_compress-8ef6b7df622e4e3f.rmeta: crates/compress/src/lib.rs crates/compress/src/analysis.rs crates/compress/src/bdi.rs crates/compress/src/block.rs crates/compress/src/encoding.rs crates/compress/src/fpc.rs

crates/compress/src/lib.rs:
crates/compress/src/analysis.rs:
crates/compress/src/bdi.rs:
crates/compress/src/block.rs:
crates/compress/src/encoding.rs:
crates/compress/src/fpc.rs:
