/root/repo/target/release/deps/hllc-7a3da5953476eab3.d: src/bin/hllc.rs

/root/repo/target/release/deps/hllc-7a3da5953476eab3: src/bin/hllc.rs

src/bin/hllc.rs:
