/root/repo/target/release/deps/hllc_trace-d0e3de73cee5e4ad.d: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs

/root/repo/target/release/deps/libhllc_trace-d0e3de73cee5e4ad.rlib: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs

/root/repo/target/release/deps/libhllc_trace-d0e3de73cee5e4ad.rmeta: crates/trace/src/lib.rs crates/trace/src/app.rs crates/trace/src/data.rs crates/trace/src/driver.rs crates/trace/src/mix.rs crates/trace/src/pattern.rs crates/trace/src/profile.rs crates/trace/src/spec.rs

crates/trace/src/lib.rs:
crates/trace/src/app.rs:
crates/trace/src/data.rs:
crates/trace/src/driver.rs:
crates/trace/src/mix.rs:
crates/trace/src/pattern.rs:
crates/trace/src/profile.rs:
crates/trace/src/spec.rs:
